// Regenerates paper Fig. 7: NTT latency vs polynomial length for different
// numbers of atom buffers (Nb), against the x86 software baseline.
//
// Expected shape (paper Sec. VI.C): Nb=1 is no better than software; one
// auxiliary buffer (Nb=2) buys an order of magnitude; Nb=4/6 add another
// 1.5-2.5x, more at large N where the inter-row regime dominates.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "model/baselines.h"
#include "model/cpu_baseline.h"
#include "sim/runner.h"

int main() {
  using namespace nttpim;
  bench::print_table1_header("Fig. 7: Sensitivity to Nb (latency in us)");

  const std::size_t sizes[] = {256, 512, 1024, 2048, 4096, 8192};
  const std::size_t buffer_counts[] = {1, 2, 4, 6};

  TablePrinter table({"N", "x86 plain", "x86 mont.", "Nb=1", "Nb=2", "Nb=4",
                      "Nb=6", "paper Nb=2", "paper Nb=6"});
  for (const std::size_t n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    row.push_back(TablePrinter::num(model::measure_cpu_plain(n).latency_us));
    row.push_back(
        TablePrinter::num(model::measure_cpu_montgomery(n).latency_us));
    for (const std::size_t nb : buffer_counts) {
      sim::NttRunConfig config;
      config.n = n;
      config.num_buffers = nb;
      const auto result = sim::run_ntt_on_pim(config);
      if (!result.verified) {
        std::cerr << "verification FAILED for N=" << n << " Nb=" << nb
                  << "\n";
        return 1;
      }
      row.push_back(TablePrinter::num(result.latency_us));
    }
    const auto paper2 = model::paper_nttpim(2).latency_at(n);
    const auto paper6 = model::paper_nttpim(6).latency_at(n);
    row.push_back(paper2 ? TablePrinter::num(*paper2) : "-");
    row.push_back(paper6 ? TablePrinter::num(*paper6) : "-");
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nBuffer speedups (simulated):\n";
  TablePrinter speedups({"N", "Nb=1 / Nb=2", "Nb=2 / Nb=4", "Nb=2 / Nb=6"});
  for (const std::size_t n : sizes) {
    double us[4];
    int i = 0;
    for (const std::size_t nb : buffer_counts) {
      sim::NttRunConfig config;
      config.n = n;
      config.num_buffers = nb;
      us[i++] = sim::run_ntt_on_pim(config).latency_us;
    }
    speedups.add_row({std::to_string(n), TablePrinter::num(us[0] / us[1]),
                      TablePrinter::num(us[1] / us[2]),
                      TablePrinter::num(us[1] / us[3])});
  }
  speedups.print(std::cout);
  std::cout << "\nPaper claim: Nb=1 ~ software; extra buffers give "
               "1.5~2.5x, growing with N.\n";
  return 0;
}
